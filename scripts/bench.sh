#!/usr/bin/env bash
# bench.sh — run the simulator throughput benchmark and record the results
# as BENCH_sim.json, so the perf trajectory is visible across PRs.
#
# Usage:
#   scripts/bench.sh            # full run (benchtime 3x, written to BENCH_sim.json)
#   scripts/bench.sh -short     # quick smoke run (1 iteration, no file written)
#
# Each JSON entry records the benchmark case, simulated memory cycles per
# wall-clock second, ns per run, bytes and allocations per run, and the
# steady-state allocation count (heap allocations inside the simulation
# loop, excluding system construction — a few hundred pool warm-up
# allocations per run when the allocation-free hot path holds, so growth
# here means a per-cycle allocation crept in).
#
# Full runs also record burstlint's wall time over ./... as a "burstlint"
# entry (with the shared call-graph/summary build as "burstlint_interproc"
# and the Andersen points-to solve as "burstlint_pointsto"): the analyzers
# build per-function CFGs, run worklist solvers, and solve whole-program
# constraint systems, and this keeps their cost on the same trajectory
# chart as the simulator itself.
set -euo pipefail
cd "$(dirname "$0")/.."

# 10 iterations per case: the 1-CPU container swings ±20% run to run, and
# 3x samples were dominated by that noise.
BENCHTIME=10x
OUT=BENCH_sim.json
if [[ "${1:-}" == "-short" ]]; then
    BENCHTIME=1x
    OUT=""
fi

RAW=$(go test -run '^$' -bench 'BenchmarkSimThroughput|BenchmarkParallelSim' -benchmem -benchtime "$BENCHTIME" .)
echo "$RAW"

[[ -z "$OUT" ]] && exit 0

# Event-queue microbenchmarks: the per-operation cost of the hierarchical
# bitmap queue and the wheel underpinning every next-event lookup. These run
# at a fixed benchtime (they are nanosecond-scale; 3 iterations would be
# meaningless) and land in the same JSON so a queue regression is as visible
# as a simulator one.
QRAW=$(go test -run '^$' -bench 'BenchmarkEventQueue|BenchmarkEventWheel' -benchtime 2s ./internal/eventq/)
echo "$QRAW"

# Wall time of the full static-analysis suite (build of burstlint itself
# excluded: compile first, then time the lint run). -timing reports how
# long the shared interprocedural builds — the CHA call graph plus effect
# summaries ("burstlint_interproc") and the Andersen points-to solution
# ("burstlint_pointsto"), each computed once and cached across the
# whole-program analyzers — took inside that total; they land as their own
# entries so the interprocedural tier's cost is tracked separately from
# load/typecheck and the points-to solver's cost separately from both.
go build -o /tmp/burstlint.$$ ./cmd/burstlint
LINT_NS_START=$(date +%s%N)
LINT_TIMING=$(/tmp/burstlint.$$ -timing ./... 2>&1 >/dev/null)
LINT_NS_END=$(date +%s%N)
rm -f /tmp/burstlint.$$
LINT_MS=$(( (LINT_NS_END - LINT_NS_START) / 1000000 ))
INTERPROC_MS=$(echo "$LINT_TIMING" | awk '/^timing (callgraph|summary) /{ms += $3} END {print ms + 0}')
POINTSTO_MS=$(echo "$LINT_TIMING" | awk '/^timing pointsto /{ms += $3} END {print ms + 0}')
echo "burstlint ./...: ${LINT_MS} ms (interprocedural build: ${INTERPROC_MS} ms, points-to solve: ${POINTSTO_MS} ms)"

{ echo "$RAW"; echo "$QRAW"; } | awk -v lint_ms="$LINT_MS" -v interproc_ms="$INTERPROC_MS" -v pointsto_ms="$POINTSTO_MS" '
BEGIN { print "["; first = 1 }
/^BenchmarkEventQueue|^BenchmarkEventWheel/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    nsop = ""
    for (i = 2; i <= NF; i++) if ($(i+1) == "ns/op") nsop = $i
    if (nsop == "") next
    if (!first) print ","
    first = 0
    printf "  {\"case\": \"eventq/%s\", \"ns_per_op\": %s}", name, nsop
}
/^BenchmarkParallelSim\// {
    # Channel-shard worker-pool cases land as parallel/<bench>/<mech>/workersN;
    # the 4-worker-to-serial simcycles/s ratio on the swim case is emitted at
    # END as parallel_scaling_efficiency (on a 1-CPU host this measures
    # barrier overhead, not speedup). barrier_crossings_per_kcycle counts
    # pool barrier rounds per thousand simulated cycles (one per ticked
    # cycle without windows); idle_crossings_per_kcycle is the same rate
    # restricted to the batched skip/window phases, where per-cycle
    # barriers would cost 1000.
    name = $1
    sub(/^BenchmarkParallelSim\//, "", name)
    sub(/-[0-9]+$/, "", name)
    nsop = ""; cyc = ""; bop = ""; aop = ""; bxk = ""; ixk = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "simcycles/s") cyc = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") aop = $i
        if ($(i+1) == "barrier_crossings_per_kcycle") bxk = $i
        if ($(i+1) == "idle_crossings_per_kcycle") ixk = $i
    }
    if (cyc == "") next
    if (name ~ /^swim\/.*\/workers1$/) { base_cyc = cyc }
    if (name ~ /^swim\/.*\/workers4$/) { four_cyc = cyc }
    if (!first) print ","
    first = 0
    printf "  {\"case\": \"parallel/%s\", \"simcycles_per_sec\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"barrier_crossings_per_kcycle\": %s", name, cyc, nsop, bop, aop, bxk
    if (ixk != "") printf ", \"idle_crossings_per_kcycle\": %s", ixk
    printf "}"
}
/^BenchmarkSimThroughput\// {
    name = $1
    sub(/^BenchmarkSimThroughput\//, "", name)
    sub(/-[0-9]+$/, "", name)
    nsop = ""; cyc = ""; bop = ""; aop = ""; hot = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "simcycles/s") cyc = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") aop = $i
        if ($(i+1) == "hotallocs/op") hot = $i
    }
    if (!first) print ","
    first = 0
    printf "  {\"case\": \"%s\", \"simcycles_per_sec\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"steady_state_allocs_per_op\": %s}", name, cyc, nsop, bop, aop, hot
}
END {
    if (base_cyc != "" && four_cyc != "") {
        if (!first) print ","
        first = 0
        printf "  {\"case\": \"parallel_scaling_efficiency\", \"workers4_over_serial\": %.3f}", four_cyc / base_cyc
    }
    if (!first) print ","
    printf "  {\"case\": \"burstlint\", \"wall_ms\": %s},\n", lint_ms
    printf "  {\"case\": \"burstlint_interproc\", \"wall_ms\": %s},\n", interproc_ms
    printf "  {\"case\": \"burstlint_pointsto\", \"wall_ms\": %s}\n", pointsto_ms
    print "]"
}
' > "$OUT"

echo "wrote $OUT"
