#!/usr/bin/env bash
# ci.sh — the full verification gate: static checks, build, race-enabled
# tests, and a short throughput benchmark smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== burstlint =="
go run ./cmd/burstlint ./...

echo "== interprocedural tier (call graph, effect summaries, ownership gate) =="
# The burstlint stage above already fails if sharestate/detflow/goroutcheck
# find anything on the tree; this stage runs the tier's own corpus tests so
# a regression in the machinery is caught even when the tree happens to be
# annotated around it.
go test -count=1 \
    ./internal/analysis/callgraph/ ./internal/analysis/summary/ \
    ./internal/analysis/sharestate/ ./internal/analysis/detflow/ \
    ./internal/analysis/goroutcheck/

echo "== pointsto tier (Andersen solver, ownership audit, concurrency-hygiene analyzers) =="
# The points-to solution backs sharestate's annotation audit and the
# leakcheck/ctxflow/chanflow analyzers; this stage runs the solver's own
# probe corpus plus each analyzer's analysistest corpus.
go test -count=1 \
    ./internal/analysis/pointsto/ ./internal/analysis/leakcheck/ \
    ./internal/analysis/ctxflow/ ./internal/analysis/chanflow/

echo "== burstlint golden (CLI output/exit-code contract) =="
go test -count=1 -run 'TestGolden|TestExitCode' ./cmd/burstlint/

echo "== go test -race (full tree; covers the sim/profiling/experiments concurrency set) =="
go test -race ./...

echo "== go test -tags invariants (protocol sanitizer armed) =="
go test -tags invariants ./internal/mctest/ ./internal/sim/ ./internal/dram/ ./internal/memctrl/

echo "== eventq gate (differential fuzz seed corpus + event-wheel shadow check) =="
# The fuzz seeds replay the recorded operation sequences against the naive
# reference queue; the invariants build then cross-checks the engine's
# wheel-predicted next-event cycle against the linear scan on a live
# simulation (an over-estimate would let an idle skip jump a real event).
go test -count=1 -run 'FuzzQueueDifferential|TestQueueDifferential|TestWheel' ./internal/eventq/
go test -count=1 -tags invariants -run 'TestEngineShadow' ./internal/memctrl/
go test -count=1 -tags invariants -run 'TestTraceSkipEquivalence' ./internal/sim/

echo "== parallel-sim gate (differential equivalence + barrier fuzz seeds under -race, then a -count=2 determinism rerun) =="
# The full -race stage above already covers these packages once; this stage
# pins the contract explicitly. First the differential/metamorphic suite and
# the FuzzParallelBarrier seed corpus under the race detector (-short bounds
# the matrix: the full sweep runs in the plain -race stage), then the
# equivalence suite twice in one invocation — identical configurations must
# produce bit-identical results run to run, not just shard-merge to match
# serial once.
go test -race -short -count=1 -run 'Parallel' ./internal/sim/
go test -race -count=1 ./internal/parsim/
go test -count=2 -run 'TestParallelEquivalence' ./internal/sim/

echo "== traced simulation (memsim -trace, exported JSON must parse) =="
tracetmp="$(mktemp -d)"
trap 'rm -rf "$tracetmp"' EXIT
go run ./cmd/memsim -bench swim -mech Burst_TH -n 50000 -warmup 20000 \
    -trace "$tracetmp/trace.json" -trace-interval 500 >/dev/null
go run ./scripts/jsoncheck "$tracetmp/trace.json"

echo "== serial perf gate (swim/Burst_TH quick smoke vs committed BENCH_sim.json) =="
# One-iteration smoke of the serial hot path, emitted as JSON (validated by
# jsoncheck like every other artifact) and compared against the committed
# baseline: a drop of more than 10% fails the gate. A single iteration is
# noisy, but the gate is meant to catch structural regressions (an
# accidental O(n) scan, a lost fast path), not single-digit drift — the
# committed number itself comes from the full scripts/bench.sh run.
go test -bench 'BenchmarkSimThroughput/swim/Burst_TH$' -benchtime 1x -run '^$' . \
    | awk '{ for (i = 2; i <= NF; i++) if ($i == "simcycles/s") v = $(i-1) }
           END { printf "[\n  {\"case\": \"swim/Burst_TH\", \"simcycles_per_sec\": %d}\n]\n", v }' \
    > "$tracetmp/perfgate.json"
go run ./scripts/jsoncheck -bench "$tracetmp/perfgate.json"
go run ./scripts/jsoncheck -bench BENCH_sim.json
baseline=$(awk -F'"simcycles_per_sec": ' '/"case": "swim\/Burst_TH"/ { split($2, a, ","); print a[1]; exit }' BENCH_sim.json)
current=$(awk -F'"simcycles_per_sec": ' '/"case": "swim\/Burst_TH"/ { split($2, a, ","); print a[1]; exit }' "$tracetmp/perfgate.json")
awk -v cur="$current" -v base="$baseline" 'BEGIN {
    if (base + 0 <= 0) { print "FAIL: no swim/Burst_TH baseline in BENCH_sim.json"; exit 1 }
    if (cur + 0 < 0.9 * base) {
        printf "FAIL: swim/Burst_TH %d simcycles/s is >10%% below committed baseline %d (floor %.0f)\n", cur, base, 0.9 * base
        exit 1
    }
    printf "ok: swim/Burst_TH %d simcycles/s (baseline %d, floor %.0f)\n", cur, base, 0.9 * base
}'

echo "== throughput bench (short) =="
scripts/bench.sh -short

echo "CI OK"
