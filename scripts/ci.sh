#!/usr/bin/env bash
# ci.sh — the full verification gate: static checks, build, race-enabled
# tests, and a short throughput benchmark smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== burstlint =="
go run ./cmd/burstlint ./...

echo "== interprocedural tier (call graph, effect summaries, ownership gate) =="
# The burstlint stage above already fails if sharestate/detflow/goroutcheck
# find anything on the tree; this stage runs the tier's own corpus tests so
# a regression in the machinery is caught even when the tree happens to be
# annotated around it.
go test -count=1 \
    ./internal/analysis/callgraph/ ./internal/analysis/summary/ \
    ./internal/analysis/sharestate/ ./internal/analysis/detflow/ \
    ./internal/analysis/goroutcheck/

echo "== burstlint golden (CLI output/exit-code contract) =="
go test -count=1 -run 'TestGolden|TestExitCode' ./cmd/burstlint/

echo "== go test -race (full tree; covers the sim/profiling/experiments concurrency set) =="
go test -race ./...

echo "== go test -tags invariants (protocol sanitizer armed) =="
go test -tags invariants ./internal/mctest/ ./internal/sim/ ./internal/dram/ ./internal/memctrl/

echo "== eventq gate (differential fuzz seed corpus + event-wheel shadow check) =="
# The fuzz seeds replay the recorded operation sequences against the naive
# reference queue; the invariants build then cross-checks the engine's
# wheel-predicted next-event cycle against the linear scan on a live
# simulation (an over-estimate would let an idle skip jump a real event).
go test -count=1 -run 'FuzzQueueDifferential|TestQueueDifferential|TestWheel' ./internal/eventq/
go test -count=1 -tags invariants -run 'TestEngineShadow' ./internal/memctrl/
go test -count=1 -tags invariants -run 'TestTraceSkipEquivalence' ./internal/sim/

echo "== parallel-sim gate (differential equivalence + barrier fuzz seeds under -race, then a -count=2 determinism rerun) =="
# The full -race stage above already covers these packages once; this stage
# pins the contract explicitly. First the differential/metamorphic suite and
# the FuzzParallelBarrier seed corpus under the race detector (-short bounds
# the matrix: the full sweep runs in the plain -race stage), then the
# equivalence suite twice in one invocation — identical configurations must
# produce bit-identical results run to run, not just shard-merge to match
# serial once.
go test -race -short -count=1 -run 'Parallel' ./internal/sim/
go test -race -count=1 ./internal/parsim/
go test -count=2 -run 'TestParallelEquivalence' ./internal/sim/

echo "== traced simulation (memsim -trace, exported JSON must parse) =="
tracetmp="$(mktemp -d)"
trap 'rm -rf "$tracetmp"' EXIT
go run ./cmd/memsim -bench swim -mech Burst_TH -n 50000 -warmup 20000 \
    -trace "$tracetmp/trace.json" -trace-interval 500 >/dev/null
go run ./scripts/jsoncheck "$tracetmp/trace.json"

echo "== throughput bench (short) =="
scripts/bench.sh -short

echo "CI OK"
