// Streaming: build a custom scientific-computing workload profile (several
// concurrent line-strided array sweeps with a heavy write stream, like the
// swim and lucas benchmarks that motivate write piggybacking) and compare
// every scheduling mechanism on it.
//
// The interesting outputs are the write-queue saturation column — read
// preemption alone drives it up, piggybacking keeps it near zero — and the
// row hit rate, where mechanisms that seek row hits in the write queue
// (Burst_WP, Burst_TH) come out ahead.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"burstmem"
)

func main() {
	prof := burstmem.Profile{
		Name:          "streaming-kernel",
		MemFraction:   0.22,
		StoreFraction: 0.40, // write-heavy: every sweep writes a result array
		StreamWeight:  0.9,
		LoopWeight:    0.1,
		Streams:       4,
		StrideBytes:   64, // 2-D sweeps: every access a new cache line
		WorkingSet:    256 << 20,
		Seed:          2007,
	}

	cfg := burstmem.DefaultConfig()
	cfg.WarmupInstructions = 80_000
	cfg.Instructions = 150_000

	fmt.Printf("%-10s %10s %9s %9s %8s %9s %9s\n",
		"mechanism", "cycles", "rd lat", "wr lat", "row hit", "data bus", "wq sat")
	var base uint64
	for _, name := range burstmem.MechanismNames() {
		mech, err := burstmem.MechanismByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := burstmem.Run(cfg, prof, mech)
		if err != nil {
			log.Fatal(err)
		}
		if name == "BkInOrder" {
			base = res.CPUCycles
		}
		fmt.Printf("%-10s %10d %9.1f %9.1f %7.1f%% %8.1f%% %8.1f%%\n",
			name, res.CPUCycles, res.ReadLatency, res.WriteLatency,
			res.RowHit*100, res.DataBusUtil*100, res.WriteSaturation*100)
	}
	fmt.Printf("\n(normalize cycles against BkInOrder = %d to read this like paper Figure 10)\n", base)
}
