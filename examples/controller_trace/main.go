// Controller trace: drive the memory controller directly (no CPU model)
// with the four-access sequence of paper Figure 1 and print when each
// access starts, what row outcome it sees and when its data completes —
// first under the serial in-order schedule, then under burst scheduling.
//
// This is the smallest possible end-to-end use of the controller API:
// build a controller, submit accesses, tick cycles, observe completions.
//
//	go run ./examples/controller_trace
package main

import (
	"fmt"
	"log"
	"sort"

	"burstmem"
	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
)

func main() {
	for _, mech := range []string{"InOrder", "Burst"} {
		fmt.Printf("--- %s ---\n", mech)
		run(mech)
		fmt.Println()
	}
	fmt.Println("paper Figure 1: 28 cycles strictly in order vs 16 out of order; access3")
	fmt.Println("overtakes access2 and becomes a row hit by joining access0's burst.")
	fmt.Println("(the InOrder mechanism here overlaps precharge/activate with the previous")
	fmt.Println("data tail, hence 22 rather than 28; the fully serial 28-cycle schedule is")
	fmt.Println("reproduced by `experiments -exp fig1` and the dram package tests)")
}

func run(mechName string) {
	cfg := burstmem.DefaultControllerConfig()
	cfg.Timing = dram.Figure1Timing() // the paper's 2-2-2, BL4 example device
	cfg.Geometry = addrmap.Geometry{
		Channels: 1, Ranks: 1, Banks: 2, Rows: 16, ColumnLines: 16, LineBytes: 64,
	}
	cfg.PoolSize = 16
	cfg.MaxWrites = 8

	factory, err := burstmem.MechanismByName(mechName)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := burstmem.NewController(cfg, factory)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1's four reads: two row empties, two row conflicts.
	seq := []addrmap.Loc{
		{Bank: 0, Row: 0}, // access0
		{Bank: 1, Row: 0}, // access1
		{Bank: 0, Row: 1}, // access2
		{Bank: 0, Row: 0}, // access3
	}
	type event struct {
		id   int
		a    *burstmem.Access
		done uint64
	}
	var events []event
	ctrl.Tick(0)
	for i, loc := range seq {
		i := i
		a, ok := ctrl.Submit(burstmem.KindRead, ctrl.Mapper().Encode(loc),
			func(a *burstmem.Access, now uint64) {
				events = append(events, event{id: i, a: a, done: now})
			})
		if !ok {
			log.Fatalf("access %d rejected", i)
		}
		_ = a
	}
	var cyc uint64
	for !ctrl.Drained() {
		cyc++
		ctrl.Tick(cyc)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].done < events[j].done })
	for _, e := range events {
		fmt.Printf("access%d  %-22s started cycle %2d  outcome %-8s  data done cycle %2d\n",
			e.id, e.a.Loc.String(), e.a.Start, e.a.Outcome, e.done)
	}
	last := events[len(events)-1]
	fmt.Printf("all four accesses complete at cycle %d\n", last.done)
}
