// Quickstart: simulate one benchmark under the conventional in-order
// scheduler and under burst scheduling with the paper's threshold, and
// print the headline comparison (execution time, read latency, row hit
// rate, bus utilization).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"burstmem"
)

func main() {
	cfg := burstmem.DefaultConfig()
	cfg.WarmupInstructions = 100_000
	cfg.Instructions = 200_000

	prof, err := burstmem.BenchmarkByName("swim")
	if err != nil {
		log.Fatal(err)
	}

	results := make(map[string]burstmem.Result)
	for _, name := range []string{"BkInOrder", "Burst_TH"} {
		mech, err := burstmem.MechanismByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := burstmem.Run(cfg, prof, mech)
		if err != nil {
			log.Fatal(err)
		}
		results[name] = res
		fmt.Printf("%-10s  IPC %.3f  read latency %5.1f cycles  row hits %4.1f%%  data bus %4.1f%%\n",
			name, res.IPC, res.ReadLatency, res.RowHit*100, res.DataBusUtil*100)
	}

	base := results["BkInOrder"]
	burst := results["Burst_TH"]
	fmt.Printf("\nburst scheduling (threshold %d) runs %s %.1f%% faster than bank in-order\n",
		burstmem.BestThreshold, prof.Name,
		(1-float64(burst.CPUCycles)/float64(base.CPUCycles))*100)
	fmt.Printf("read latency reduced %.1f%%, effective bandwidth %.2f -> %.2f GB/s\n",
		(1-burst.ReadLatency/base.ReadLatency)*100,
		base.BandwidthGBps, burst.BandwidthGBps)
}
