// Tracing: record a cycle-accurate timeline of a burst scheduling run and
// export it for Perfetto, then print the per-interval metrics time series
// (row-hit rate, data bus utilization, queue occupancy) that the aggregate
// statistics hide.
//
//	go run ./examples/tracing
//	# then open trace.json in https://ui.perfetto.dev
//
// The timeline has one process per memory channel: thread 0 is the data
// bus (READ/WRITE transfer slices), and one thread per bank shows access
// slices (enqueue to data end) with instant markers for bursts forming,
// writes piggybacking and reads preempting writes — the events of paper
// Figures 4-6, visible individually.
package main

import (
	"fmt"
	"log"
	"os"

	"burstmem"
)

func main() {
	cfg := burstmem.DefaultConfig()
	cfg.WarmupInstructions = 50_000
	cfg.Instructions = 100_000

	prof, err := burstmem.BenchmarkByName("swim")
	if err != nil {
		log.Fatal(err)
	}
	mech, err := burstmem.MechanismByName("Burst_TH")
	if err != nil {
		log.Fatal(err)
	}

	sys, err := burstmem.NewSystem(cfg, prof, mech)
	if err != nil {
		log.Fatal(err)
	}

	// 1M-event ring, metrics folded per 1000 memory cycles. A detached
	// tracer costs nothing; an attached one only observes — results are
	// bit-identical either way.
	tr := burstmem.NewTracer(1<<20, 1000)
	if !tr.Enabled() {
		log.Fatal("tracer disabled: need a positive event capacity")
	}
	sys.AttachTracer(tr)

	res, err := burstmem.RunSystem(cfg, sys, prof.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s/%s: IPC %.3f, read latency %.1f cycles\n\n",
		res.Benchmark, res.Mechanism, res.IPC, res.ReadLatency)

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := burstmem.WriteChromeTrace(f, tr, res.Benchmark+"/"+res.Mechanism); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote trace.json: %d events held (%d overwritten) — open in ui.perfetto.dev\n\n",
		tr.Len(), tr.Dropped())

	// The interval series is the run as a time series: watch the write
	// queue fill toward the piggyback threshold and the hit rate move.
	// DataBusUtil sums over channels, so normalize to a per-bus fraction.
	channels := float64(cfg.Mem.Geometry.Channels)
	fmt.Println("cycle window      row-hit  bus-util  reads  writes  sat")
	ivs := tr.Intervals()
	stride := len(ivs) / 12
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(ivs); i += stride {
		iv := ivs[i]
		fmt.Printf("[%8d,%8d)   %5.1f%%    %5.1f%%  %5.1f   %5.1f  %3.0f%%\n",
			iv.Start, iv.End, iv.RowHitRate()*100, iv.DataBusUtil()/channels*100,
			iv.MeanOutstandingReads(), iv.MeanOutstandingWrites(), iv.WriteSaturation()*100)
	}
}
