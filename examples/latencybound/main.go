// Latencybound: a pointer-chasing workload (mcf-like) where dependent
// loads serialize, so execution time tracks raw read latency rather than
// bandwidth. This is the regime where read preemption pays off: a newly
// arrived critical read interrupts an ongoing write instead of waiting
// behind it.
//
// The example contrasts each mechanism with and without read preemption
// (Intel vs Intel_RP, Burst vs Burst_RP) and reports the latency of the
// dependent-load chain.
//
//	go run ./examples/latencybound
package main

import (
	"fmt"
	"log"

	"burstmem"
)

func main() {
	prof := burstmem.Profile{
		Name:          "pointer-chase",
		MemFraction:   0.34,
		StoreFraction: 0.18,
		ChaseWeight:   0.6, // dependent loads: each address from the last load
		RandomWeight:  0.25,
		LoopWeight:    0.15,
		Streams:       1,
		WorkingSet:    512 << 20,
		Burstiness:    0.5,
		Seed:          77,
	}

	cfg := burstmem.DefaultConfig()
	cfg.WarmupInstructions = 80_000
	cfg.Instructions = 150_000

	type pair struct{ plain, rp string }
	fmt.Printf("%-22s %12s %12s %10s\n", "mechanism (plain->RP)", "cycles", "read lat", "speedup")
	for _, p := range []pair{{"Intel", "Intel_RP"}, {"Burst", "Burst_RP"}} {
		plain := run(cfg, prof, p.plain)
		rp := run(cfg, prof, p.rp)
		fmt.Printf("%-22s %5d->%-6d %5.1f->%-6.1f %9.1f%%\n",
			p.plain+" -> "+p.rp,
			plain.CPUCycles/1000, rp.CPUCycles/1000,
			plain.ReadLatency, rp.ReadLatency,
			(1-float64(rp.CPUCycles)/float64(plain.CPUCycles))*100)
	}
	fmt.Println("\n(cycles in thousands; paper Section 5.3: read preemption contributes most on")
	fmt.Println("latency-bound benchmarks like mcf, parser, perlbmk and facerec)")
}

func run(cfg burstmem.Config, prof burstmem.Profile, mech string) burstmem.Result {
	f, err := burstmem.MechanismByName(mech)
	if err != nil {
		log.Fatal(err)
	}
	res, err := burstmem.Run(cfg, prof, f)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
