// Custom mechanism: implement a new access reordering policy against the
// public API and race it against the built-ins at the controller level
// (no CPU model — accesses are injected directly).
//
// The policy here is "oldest first, fully out of order": every bank runs
// its oldest access, and among unblocked transactions the oldest access's
// transaction issues (a FR-FCFS ancestor without the row-hit rule). It
// beats the serial in-order scheduler through bank parallelism but loses
// to burst scheduling because it never clusters row hits.
//
//	go run ./examples/custom_mechanism
package main

import (
	"fmt"
	"log"
	"sort"

	"burstmem"
)

// oldestFirst is the custom mechanism. One instance drives one channel.
//
// keys mirrors the map's key set in sorted (rank, bank) order: Tick must
// visit banks deterministically, and ranging over the map directly would
// put Go's randomized iteration order in the simulated timeline.
type oldestFirst struct {
	host   *burstmem.Host
	engine *burstmem.Engine
	queues map[[2]int][]*burstmem.Access
	keys   [][2]int
	reads  int
	writes int
}

// newOldestFirst is the factory registered with the controller.
func newOldestFirst(h *burstmem.Host) burstmem.Mechanism {
	m := &oldestFirst{host: h, queues: make(map[[2]int][]*burstmem.Access)}
	m.engine = burstmem.NewEngine(h, m.onColumn)
	return m
}

// Name implements burstmem.Mechanism.
func (m *oldestFirst) Name() string { return "OldestFirst" }

// ForwardsWrites implements burstmem.Mechanism: reads may pass older
// writes, so matching reads must be forwarded from the write queue.
func (m *oldestFirst) ForwardsWrites() bool { return true }

// Pending implements burstmem.Mechanism.
func (m *oldestFirst) Pending() (int, int) { return m.reads, m.writes }

// Enqueue implements burstmem.Mechanism.
func (m *oldestFirst) Enqueue(a *burstmem.Access, now uint64) {
	key := [2]int{int(a.Loc.Rank), int(a.Loc.Bank)}
	if _, ok := m.queues[key]; !ok {
		i := sort.Search(len(m.keys), func(i int) bool {
			k := m.keys[i]
			return k[0] > key[0] || (k[0] == key[0] && k[1] >= key[1])
		})
		m.keys = append(m.keys, [2]int{})
		copy(m.keys[i+1:], m.keys[i:])
		m.keys[i] = key
	}
	m.queues[key] = append(m.queues[key], a)
	if a.Kind == burstmem.KindRead {
		m.reads++
	} else {
		m.writes++
	}
}

func (m *oldestFirst) onColumn(a *burstmem.Access, now uint64) {
	if a.Kind == burstmem.KindRead {
		m.reads--
	} else {
		m.writes--
	}
}

// Tick implements burstmem.Mechanism: refill every idle bank with its
// oldest access, then issue the oldest unblocked transaction. Banks are
// visited through the sorted key mirror, never by ranging the map.
func (m *oldestFirst) Tick(now uint64) {
	for _, key := range m.keys {
		q := m.queues[key]
		if len(q) == 0 || m.engine.Ongoing(key[0], key[1]) != nil {
			continue
		}
		m.engine.SetOngoing(key[0], key[1], q[0])
		m.queues[key] = q[1:]
	}
	if !m.host.Channel().CommandSlotFree() {
		return
	}
	best := -1
	cands := m.engine.Candidates()
	for i, c := range cands {
		if !c.Unblocked {
			continue
		}
		if best < 0 || c.Access.Arrival < cands[best].Access.Arrival {
			best = i
		}
	}
	if best >= 0 {
		m.engine.Issue(cands[best], now)
	}
}

func main() {
	prof := burstmem.Profile{
		Name:         "mixed",
		MemFraction:  0.25,
		StreamWeight: 0.6, RandomWeight: 0.4,
		StoreFraction: 0.3,
		Streams:       3,
		StrideBytes:   64,
		WorkingSet:    256 << 20,
		Seed:          42,
	}
	cfg := burstmem.DefaultConfig()
	cfg.WarmupInstructions = 60_000
	cfg.Instructions = 120_000

	fmt.Printf("%-12s %10s %9s %9s %9s\n", "mechanism", "cycles", "rd lat", "row hit", "data bus")
	show := func(name string, factory burstmem.MechanismFactory) {
		res, err := burstmem.Run(cfg, prof, factory)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10d %9.1f %8.1f%% %8.1f%%\n",
			name, res.CPUCycles, res.ReadLatency, res.RowHit*100, res.DataBusUtil*100)
	}
	for _, name := range []string{"InOrder", "BkInOrder", "Burst_TH"} {
		f, err := burstmem.MechanismByName(name)
		if err != nil {
			log.Fatal(err)
		}
		show(name, f)
	}
	show("OldestFirst", newOldestFirst)
	fmt.Println("\nOldestFirst recovers bank parallelism but not row locality: it lands between")
	fmt.Println("the in-order baseline and burst scheduling.")
}
