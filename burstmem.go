// Package burstmem is a cycle-accurate DDR2 memory-system simulator built
// around the burst scheduling access reordering mechanism of Shao & Davis,
// "A Burst Scheduling Access Reordering Mechanism" (HPCA 2007).
//
// The library contains a complete reproduction stack:
//
//   - a DDR2 SDRAM device timing model (banks, ranks, channels, refresh,
//     data-bus contention and rank turnaround),
//   - a memory controller chassis with a shared access pool, write-queue
//     RAW forwarding and pluggable scheduling mechanisms,
//   - the paper's burst scheduling (with read preemption, write
//     piggybacking and the static threshold) plus the comparison
//     mechanisms: bank in-order, row-hit-first (Rixner), and Intel's
//     patented out-of-order scheduling,
//   - a trace-driven out-of-order CPU with L1/L2 caches and a front-side
//     bus, and synthetic workload profiles standing in for the 16 SPEC
//     CPU2000 benchmarks of the paper's evaluation.
//
// The quickest way in:
//
//	cfg := burstmem.DefaultConfig()
//	cfg.Instructions = 500_000
//	prof, _ := burstmem.BenchmarkByName("swim")
//	mech, _ := burstmem.MechanismByName("Burst_TH")
//	res, _ := burstmem.Run(cfg, prof, mech)
//	fmt.Printf("IPC %.3f, read latency %.1f cycles\n", res.IPC, res.ReadLatency)
//
// For controller-level experiments (no CPU model), build a
// memctrl-compatible configuration with ControllerConfig and submit
// accesses directly; see examples/controller_trace.
//
// This root package re-exports the stable surface of the internal
// packages; the experiment harness binaries (cmd/experiments, cmd/sweep,
// cmd/memsim) regenerate every table and figure of the paper.
package burstmem

import (
	"io"

	"burstmem/internal/dram"
	"burstmem/internal/memctrl"
	"burstmem/internal/sim"
	"burstmem/internal/trace"
	"burstmem/internal/workload"
)

// Core simulation types.
type (
	// Config assembles the simulated machine (Table 3 defaults via
	// DefaultConfig).
	Config = sim.Config
	// Result carries one simulation's measurements.
	Result = sim.Result
	// System is an assembled machine, steppable cycle by cycle.
	System = sim.System
	// Profile parameterizes a synthetic benchmark workload.
	Profile = workload.Profile
)

// Controller-level types, for building custom scheduling mechanisms or
// driving the memory controller directly.
type (
	// Mechanism is a pluggable access reordering policy.
	Mechanism = memctrl.Mechanism
	// MechanismFactory builds a Mechanism per channel.
	MechanismFactory = memctrl.Factory
	// Host is a mechanism's view of the controller.
	Host = memctrl.Host
	// Engine steps per-bank ongoing accesses through their transactions.
	Engine = memctrl.Engine
	// Candidate is a bank's next transaction.
	Candidate = memctrl.Candidate
	// Access is one main-memory read or write.
	Access = memctrl.Access
	// AccessKind distinguishes reads from writes.
	AccessKind = memctrl.Kind
	// Controller is the full memory controller.
	Controller = memctrl.Controller
	// ControllerConfig describes the controller and DRAM organization.
	ControllerConfig = memctrl.Config
	// Timing holds SDRAM timing constraints in memory cycles.
	Timing = dram.Timing
	// RowOutcome classifies accesses as row hit/empty/conflict.
	RowOutcome = dram.RowOutcome
	// PowerParams holds DRAM energy/power coefficients (per rank).
	PowerParams = dram.PowerParams
	// PowerReport is a channel energy breakdown.
	PowerReport = dram.PowerReport
)

// Access kinds.
const (
	KindRead  = memctrl.KindRead
	KindWrite = memctrl.KindWrite
)

// Row outcomes.
const (
	RowHit      = dram.RowHit
	RowEmpty    = dram.RowEmpty
	RowConflict = dram.RowConflict
)

// Observability types (see internal/trace): a ring-buffered, zero-overhead-
// when-detached tracer over the DRAM command stream, access lifecycle and
// scheduler decisions, with per-interval derived metrics and Chrome
// trace_event export for Perfetto.
type (
	// Tracer records simulation events; attach with System.AttachTracer
	// or Controller.SetTracer.
	Tracer = trace.Tracer
	// TraceEvent is one fixed-size trace record.
	TraceEvent = trace.Event
	// TraceInterval aggregates one metrics window of a traced run.
	TraceInterval = trace.Interval
)

// NewTracer builds a tracer holding up to events ring entries and, when
// intervalCycles > 0, a per-interval metrics time series.
func NewTracer(events int, intervalCycles uint64) *Tracer {
	return trace.New(events, intervalCycles)
}

// WriteChromeTrace renders a traced run as Chrome trace_event JSON,
// loadable in ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, t *Tracer, label string) error {
	return trace.WriteChrome(w, t, label)
}

// RunSystem drives a caller-assembled System (e.g. one with a tracer
// attached) through warmup and the measurement window.
func RunSystem(cfg Config, sys *System, name string) (Result, error) {
	return sim.RunSystem(cfg, sys, name)
}

// BestThreshold is the paper's experimentally determined optimal write
// queue threshold (52 of a 64-entry write queue).
const BestThreshold = sim.BestThreshold

// DefaultConfig returns the paper's Table 3 baseline machine: 4 GHz 8-way
// CPU (196 ROB, 32 LSQ), 128 KB L1s, 2 MB L2, 800 MHz FSB, 4 GB DDR2
// PC2-6400 in 2 channels x 4 ranks x 4 banks, open page, page
// interleaving, 256-entry pool with 64 writes.
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultControllerConfig returns the Table 3 memory controller alone.
func DefaultControllerConfig() ControllerConfig { return memctrl.DefaultConfig() }

// NewController builds a standalone memory controller running the given
// mechanism on every channel (for controller-level studies without the
// CPU model).
func NewController(cfg ControllerConfig, factory MechanismFactory) (*Controller, error) {
	return memctrl.New(cfg, factory)
}

// NewEngine builds a transaction engine for a custom mechanism; onColumn
// (optional) runs whenever an access's column transaction issues.
func NewEngine(h *Host, onColumn func(a *Access, now uint64)) *Engine {
	return memctrl.NewEngine(h, onColumn)
}

// Run executes one simulation to the configured instruction target.
func Run(cfg Config, prof Profile, factory MechanismFactory) (Result, error) {
	return sim.Run(cfg, prof, factory)
}

// NewSystem assembles a machine for cycle-by-cycle stepping.
func NewSystem(cfg Config, prof Profile, factory MechanismFactory) (*System, error) {
	return sim.NewSystem(cfg, prof, factory)
}

// MechanismNames lists the paper's Table 4 mechanisms in its order, plus
// the serial "InOrder" reference of Figure 1(a).
func MechanismNames() []string { return sim.MechanismNames() }

// MechanismByName resolves a Table 4 mechanism name ("BkInOrder",
// "RowHit", "Intel", "Intel_RP", "Burst", "Burst_RP", "Burst_WP",
// "Burst_TH", "Burst_TH<n>", or "InOrder") to its factory.
func MechanismByName(name string) (MechanismFactory, error) { return sim.MechanismByName(name) }

// Benchmarks returns the 16 built-in synthetic benchmark profiles in the
// paper's Figure 10 order.
func Benchmarks() []Profile { return workload.Profiles() }

// BenchmarkNames returns the benchmark names in Figure 10 order.
func BenchmarkNames() []string { return workload.Names() }

// BenchmarkByName returns the named built-in profile.
func BenchmarkByName(name string) (Profile, error) { return workload.ByName(name) }

// Generator produces the instruction stream a simulated core runs.
type Generator = workload.Generator

// Op is one instruction of a workload stream.
type Op = workload.Op

// ParseTrace reads a recorded trace file (format documented in
// internal/workload: `L addr`, `LD addr`, `S addr`, `N count` lines) into
// a replayable generator.
func ParseTrace(name string, r io.Reader) (Generator, error) {
	return workload.ParseTrace(name, r)
}

// WriteTrace records n ops from a generator in the trace file format.
func WriteTrace(w io.Writer, gen Generator, n int) error {
	return workload.WriteTrace(w, gen, n)
}

// RunGenerator executes a simulation over caller-supplied generators (one
// per core), e.g. parsed trace files.
func RunGenerator(cfg Config, name string, gens []Generator, factory MechanismFactory) (Result, error) {
	return sim.RunGenerator(cfg, name, gens, factory)
}

// DDR2Timing returns the paper's device: DDR2 PC2-6400, 5-5-5, BL8.
func DDR2Timing() Timing { return dram.DDR2_800() }

// DDRTiming returns the previous-generation DDR-400 device (2-2-2) and
// DDR3Timing the next-generation DDR3-1600 device (8-8-8), for the
// cross-generation scaling experiment of the paper's Section 6.
func DDRTiming() Timing { return dram.DDR_400() }

// DDR3Timing returns a DDR3-1600-class device (see DDRTiming).
func DDR3Timing() Timing { return dram.DDR3_1600() }

// DefaultPowerParams returns DDR2-800 per-rank energy coefficients for the
// DRAM power model.
func DefaultPowerParams() PowerParams { return dram.DefaultPowerParams() }
