module burstmem

go 1.22
