// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices called
// out in DESIGN.md. Each benchmark runs a scaled-down simulation per
// iteration and reports the figure's headline quantities via
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature; cmd/experiments runs the
// full-size version.
package burstmem

import (
	"fmt"
	"runtime"
	"testing"

	"burstmem/internal/addrmap"
	"burstmem/internal/dram"
	"burstmem/internal/memctrl"
	"burstmem/internal/sim"
	"burstmem/internal/workload"
)

// benchConfig keeps per-iteration cost bounded (one iteration simulates
// tens of thousands of instructions on the full machine).
func benchConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstructions = 20_000
	cfg.Instructions = 40_000
	return cfg
}

func benchRun(b *testing.B, bench, mech string) sim.Result {
	b.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	factory, err := sim.MechanismByName(mech)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(benchConfig(), prof, factory)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1_AccessLatencies measures the three single-access
// latencies of paper Table 1 against the timing model and reports them.
func BenchmarkTable1_AccessLatencies(b *testing.B) {
	tm := dram.DDR2_800()
	tm.TREFI = 0
	var hit, empty, conflict uint64
	for i := 0; i < b.N; i++ {
		ch, err := dram.NewChannel(tm, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		var cyc uint64
		ch.Tick(0)
		// issue waits until cmd is unblocked and returns the issue cycle.
		issue := func(cmd dram.Cmd, t dram.Target) (uint64, dram.IssueResult) {
			for !ch.CanIssue(cmd, t) {
				cyc++
				ch.Tick(cyc)
			}
			at := cyc
			res := ch.Issue(cmd, t, false)
			cyc++
			ch.Tick(cyc)
			return at, res
		}
		// settle lets the busses and bank constraints drain so each case
		// measures the idle-bus latency of Table 1 (first command issue
		// to first data beat).
		settle := func() {
			for i := 0; i < 64; i++ {
				cyc++
				ch.Tick(cyc)
			}
		}
		// Row empty: activate + read.
		at, _ := issue(dram.CmdActivate, dram.Target{Row: 0})
		_, r := issue(dram.CmdRead, dram.Target{Row: 0})
		empty = r.DataStart - at
		settle()
		// Row hit: column access only.
		at, r = issue(dram.CmdRead, dram.Target{Row: 0, Col: 1})
		hit = r.DataStart - at
		settle()
		// Row conflict: precharge + activate + read.
		at, _ = issue(dram.CmdPrecharge, dram.Target{})
		issue(dram.CmdActivate, dram.Target{Row: 1})
		_, r = issue(dram.CmdRead, dram.Target{Row: 1})
		conflict = r.DataStart - at
	}
	b.ReportMetric(float64(hit), "hit-cycles")
	b.ReportMetric(float64(empty), "empty-cycles")
	b.ReportMetric(float64(conflict), "conflict-cycles")
}

// BenchmarkFigure1_SchedulingExample runs the four-access Figure 1 example
// under burst scheduling and reports the completion cycle (paper: 16 vs 28
// strictly in order).
func BenchmarkFigure1_SchedulingExample(b *testing.B) {
	var end uint64
	for i := 0; i < b.N; i++ {
		cfg := memctrl.DefaultConfig()
		cfg.Timing = dram.Figure1Timing()
		cfg.Geometry = addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 2, Rows: 16, ColumnLines: 16, LineBytes: 64}
		cfg.PoolSize = 16
		cfg.MaxWrites = 8
		factory, err := sim.MechanismByName("Burst")
		if err != nil {
			b.Fatal(err)
		}
		ctrl, err := memctrl.New(cfg, factory)
		if err != nil {
			b.Fatal(err)
		}
		end = 0
		done := func(a *memctrl.Access, now uint64) {
			if now > end {
				end = now
			}
		}
		ctrl.Tick(0)
		for _, loc := range []addrmap.Loc{
			{Bank: 0, Row: 0}, {Bank: 1, Row: 0}, {Bank: 0, Row: 1}, {Bank: 0, Row: 0},
		} {
			if _, ok := ctrl.Submit(memctrl.KindRead, ctrl.Mapper().Encode(loc), done); !ok {
				b.Fatal("submit rejected")
			}
		}
		for cyc := uint64(1); !ctrl.Drained(); cyc++ {
			ctrl.Tick(cyc)
		}
	}
	b.ReportMetric(float64(end), "completion-cycles")
}

// BenchmarkFigure7_AccessLatency reports mean read and write latency per
// mechanism on the swim profile (paper Figure 7's most-discussed series).
func BenchmarkFigure7_AccessLatency(b *testing.B) {
	for _, mech := range sim.MechanismNames() {
		b.Run(mech, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = benchRun(b, "swim", mech)
			}
			b.ReportMetric(res.ReadLatency, "read-lat-cycles")
			b.ReportMetric(res.WriteLatency, "write-lat-cycles")
		})
	}
}

// BenchmarkFigure8_OutstandingAccesses reports the mean outstanding
// read/write occupancy and write-queue saturation for swim (Figure 8).
func BenchmarkFigure8_OutstandingAccesses(b *testing.B) {
	for _, mech := range []string{"BkInOrder", "RowHit", "Intel", "Burst_RP", "Burst_WP", "Burst_TH"} {
		b.Run(mech, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = benchRun(b, "swim", mech)
			}
			b.ReportMetric(res.OutstandingReads.Mean(), "mean-out-reads")
			b.ReportMetric(res.OutstandingWrites.Mean(), "mean-out-writes")
			b.ReportMetric(res.WriteSaturation*100, "wq-sat-%")
		})
	}
}

// BenchmarkFigure9_RowHitBusUtil reports row hit rate and bus utilization
// per mechanism (Figure 9), averaged over a representative benchmark mix.
func BenchmarkFigure9_RowHitBusUtil(b *testing.B) {
	mix := []string{"swim", "gcc", "mcf"}
	for _, mech := range sim.MechanismNames() {
		b.Run(mech, func(b *testing.B) {
			var hit, data, addr float64
			for i := 0; i < b.N; i++ {
				hit, data, addr = 0, 0, 0
				for _, bench := range mix {
					res := benchRun(b, bench, mech)
					hit += res.RowHit
					data += res.DataBusUtil
					addr += res.AddrBusUtil
				}
			}
			n := float64(len(mix))
			b.ReportMetric(hit/n*100, "row-hit-%")
			b.ReportMetric(data/n*100, "data-bus-%")
			b.ReportMetric(addr/n*100, "addr-bus-%")
		})
	}
}

// BenchmarkFigure10_ExecutionTime reports execution time normalized to
// BkInOrder per mechanism (Figure 10) on a representative benchmark mix.
func BenchmarkFigure10_ExecutionTime(b *testing.B) {
	mix := []string{"swim", "gcc", "mcf", "lucas"}
	for _, mech := range []string{"RowHit", "Intel", "Intel_RP", "Burst", "Burst_RP", "Burst_WP", "Burst_TH"} {
		b.Run(mech, func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				norm = 0
				for _, bench := range mix {
					base := benchRun(b, bench, "BkInOrder")
					res := benchRun(b, bench, mech)
					norm += float64(res.CPUCycles) / float64(base.CPUCycles)
				}
				norm /= float64(len(mix))
			}
			b.ReportMetric(norm, "exec/BkInOrder")
		})
	}
}

// BenchmarkFigure11_ThresholdOutstanding reports outstanding-write
// occupancy for swim across thresholds (Figure 11).
func BenchmarkFigure11_ThresholdOutstanding(b *testing.B) {
	for _, th := range []int{0, 16, 32, 48, 52, 64} {
		b.Run(fmt.Sprintf("TH%d", th), func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = benchRun(b, "swim", fmt.Sprintf("Burst_TH%d", th))
			}
			b.ReportMetric(res.OutstandingWrites.Mean(), "mean-out-writes")
			b.ReportMetric(res.WriteSaturation*100, "wq-sat-%")
		})
	}
}

// BenchmarkFigure12_ThresholdSweep reports execution time (normalized to
// plain Burst) and latencies versus threshold (Figure 12).
func BenchmarkFigure12_ThresholdSweep(b *testing.B) {
	mix := []string{"swim", "gcc", "mcf"}
	for _, th := range []int{0, 16, 32, 48, 52, 64} {
		b.Run(fmt.Sprintf("TH%d", th), func(b *testing.B) {
			var norm, rd, wr float64
			for i := 0; i < b.N; i++ {
				norm, rd, wr = 0, 0, 0
				for _, bench := range mix {
					base := benchRun(b, bench, "Burst")
					res := benchRun(b, bench, fmt.Sprintf("Burst_TH%d", th))
					norm += float64(res.CPUCycles) / float64(base.CPUCycles)
					rd += res.ReadLatency
					wr += res.WriteLatency
				}
				n := float64(len(mix))
				norm, rd, wr = norm/n, rd/n, wr/n
			}
			b.ReportMetric(norm, "exec/Burst")
			b.ReportMetric(rd, "read-lat-cycles")
			b.ReportMetric(wr, "write-lat-cycles")
		})
	}
}

// BenchmarkAblationTransactionPriority quantifies the Table 2 transaction
// priority against naive oldest-first selection (the paper's "bubble
// cycles" argument, Section 4.2).
func BenchmarkAblationTransactionPriority(b *testing.B) {
	for _, mech := range []string{"Burst", "Burst_Naive"} {
		b.Run(mech, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = benchRun(b, "swim", mech)
			}
			b.ReportMetric(float64(res.CPUCycles), "cpu-cycles")
			b.ReportMetric(res.DataBusUtil*100, "data-bus-%")
		})
	}
}

// BenchmarkAblationRAWForwarding measures write-queue forwarding on/off.
func BenchmarkAblationRAWForwarding(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "forwarding"
		if disable {
			name = "no-forwarding"
		}
		b.Run(name, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Mem.NoForwarding = disable
				prof, err := workload.ByName("gcc")
				if err != nil {
					b.Fatal(err)
				}
				factory, err := sim.MechanismByName("Burst_TH")
				if err != nil {
					b.Fatal(err)
				}
				res, err = sim.Run(cfg, prof, factory)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.CPUCycles), "cpu-cycles")
			b.ReportMetric(float64(res.ForwardedReads), "forwarded-reads")
		})
	}
}

// BenchmarkAblationRowPolicy compares Open Page against Close Page
// Autoprecharge (paper Table 1's two static policies).
func BenchmarkAblationRowPolicy(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy memctrl.RowPolicy
	}{{"open-page", memctrl.OpenPage}, {"close-page-auto", memctrl.ClosePageAuto}} {
		b.Run(tc.name, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Mem.RowPolicy = tc.policy
				prof, err := workload.ByName("swim")
				if err != nil {
					b.Fatal(err)
				}
				factory, err := sim.MechanismByName("Burst_TH")
				if err != nil {
					b.Fatal(err)
				}
				res, err = sim.Run(cfg, prof, factory)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.CPUCycles), "cpu-cycles")
			b.ReportMetric(res.RowHit*100, "row-hit-%")
		})
	}
}

// BenchmarkAblationAddressMapping compares the address mappings from the
// paper's related work under burst scheduling.
func BenchmarkAblationAddressMapping(b *testing.B) {
	for _, mapping := range addrmap.Names() {
		b.Run(mapping, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Mem.Mapping = mapping
				prof, err := workload.ByName("swim")
				if err != nil {
					b.Fatal(err)
				}
				factory, err := sim.MechanismByName("Burst_TH")
				if err != nil {
					b.Fatal(err)
				}
				res, err = sim.Run(cfg, prof, factory)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.CPUCycles), "cpu-cycles")
			b.ReportMetric(res.RowHit*100, "row-hit-%")
		})
	}
}

// BenchmarkSimThroughput measures simulator performance itself: simulated
// memory cycles per wall-clock second on full-machine runs, across a
// memory-intensive streaming profile (swim), a pointer-chasing profile
// (mcf) and a compute-leaning profile (gcc). Besides the -benchmem
// whole-iteration numbers (dominated by NewSystem setup), it reports
// hotallocs/op: heap allocations during the simulation loop itself, which
// the pooled hot path keeps down to warm-up refills (it does not scale
// with simulated cycles). scripts/bench.sh
// records the results as BENCH_sim.json so perf regressions are visible
// across PRs.
func BenchmarkSimThroughput(b *testing.B) {
	cases := []struct{ bench, mech string }{
		{"swim", "Burst_TH"},
		{"swim", "BkInOrder"},
		{"mcf", "Burst_TH"},
		{"gcc", "Burst_TH"},
	}
	for _, tc := range cases {
		b.Run(tc.bench+"/"+tc.mech, func(b *testing.B) {
			prof, err := workload.ByName(tc.bench)
			if err != nil {
				b.Fatal(err)
			}
			factory, err := sim.MechanismByName(tc.mech)
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig()
			var simulated, hotAllocs uint64
			var ms runtime.MemStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := sim.NewSystem(cfg, prof, factory)
				if err != nil {
					b.Fatal(err)
				}
				target := cfg.WarmupInstructions + cfg.Instructions
				runtime.ReadMemStats(&ms)
				before := ms.Mallocs
				for sys.MinRetired() < target {
					sys.FastForward()
				}
				runtime.ReadMemStats(&ms)
				hotAllocs += ms.Mallocs - before
				simulated += sys.MemCycle()
			}
			b.StopTimer()
			b.ReportMetric(float64(simulated)/b.Elapsed().Seconds(), "simcycles/s")
			b.ReportMetric(float64(hotAllocs)/float64(b.N), "hotallocs/op")
		})
	}
}

// BenchmarkParallelSim measures the channel-shard worker pool: the same
// full-machine simulation as BenchmarkSimThroughput, but on a four-channel
// machine at worker counts 1 (serial dispatch path), 2 and 4, reporting
// simulated memory cycles per wall-clock second for each. Every worker
// count produces bit-identical results (the differential suite in
// internal/sim proves it), so the only thing that varies here is wall
// clock; scripts/bench.sh records the simcycles/s, bytes/allocs per op and
// the 4-worker/serial scaling-efficiency ratio in BENCH_sim.json. On a
// single-CPU host the ratio measures pure barrier overhead (expect < 1);
// speedup needs real cores. barrier_crossings_per_kcycle is how many pool
// barrier rounds the run cost per thousand simulated memory cycles (0 on
// the serial dispatch path) — the skip-window batching drives it far below
// the one-per-cycle baseline of 1000.
func BenchmarkParallelSim(b *testing.B) {
	for _, tc := range []struct{ bench, mech string }{
		{"swim", "Burst_TH"},
		// apsi is the skip-heavy contrast case: at 6% memory intensity
		// the front end sleeps through long miss-service stretches, so
		// the batched (skip + TickWindow) cycles dominate and the
		// idle-phase crossing rate shows the per-window barrier win.
		{"apsi", "Burst_TH"},
	} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/%s/workers%d", tc.bench, tc.mech, workers), func(b *testing.B) {
				prof, err := workload.ByName(tc.bench)
				if err != nil {
					b.Fatal(err)
				}
				factory, err := sim.MechanismByName(tc.mech)
				if err != nil {
					b.Fatal(err)
				}
				cfg := benchConfig()
				cfg.Mem.Geometry.Channels = 4
				cfg.Mem.Geometry.Ranks = 2
				cfg.Workers = workers
				var simulated, rounds uint64
				var windows, windowCycles, skipCycles uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys, err := sim.NewSystem(cfg, prof, factory)
					if err != nil {
						b.Fatal(err)
					}
					target := cfg.WarmupInstructions + cfg.Instructions
					for sys.MinRetired() < target {
						sys.FastForward()
					}
					simulated += sys.MemCycle()
					rounds += sys.Ctrl.BarrierRounds()
					w, wc, sc := sys.Ctrl.WindowStats()
					windows += w
					windowCycles += wc
					skipCycles += sc
					sys.Close()
				}
				b.StopTimer()
				b.ReportMetric(float64(simulated)/b.Elapsed().Seconds(), "simcycles/s")
				b.ReportMetric(float64(rounds)/(float64(simulated)/1000), "barrier_crossings_per_kcycle")
				// Crossings per kcycle restricted to the skip-heavy
				// (batched) phases: per-cycle barriers would cost 1000
				// here; windows+skips must get it at least 10x lower.
				if batched := windowCycles + skipCycles; batched > 0 {
					b.ReportMetric(float64(windows)/(float64(batched)/1000), "idle_crossings_per_kcycle")
				}
			})
		}
	}
}

// BenchmarkControllerThroughput is a microbenchmark of the controller fast
// path: cycles simulated per second under saturation (useful when
// optimizing the simulator itself).
func BenchmarkControllerThroughput(b *testing.B) {
	cfg := memctrl.DefaultConfig()
	cfg.Timing.TREFI = 0
	factory, err := sim.MechanismByName("Burst_TH")
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := memctrl.New(cfg, factory)
	if err != nil {
		b.Fatal(err)
	}
	rng := uint64(0x12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	ctrl.Tick(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kind := memctrl.KindRead
		if next()%4 == 0 {
			kind = memctrl.KindWrite
		}
		if ctrl.CanAccept(kind) {
			ctrl.Submit(kind, next()%(4<<30), nil)
		}
		ctrl.Tick(uint64(i + 1))
	}
}

// BenchmarkExtensionDynamicThreshold races the paper's future-work
// adaptive threshold against the tuned static one.
func BenchmarkExtensionDynamicThreshold(b *testing.B) {
	for _, mech := range []string{"Burst_TH", "Burst_DYN"} {
		b.Run(mech, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = benchRun(b, "lucas", mech)
			}
			b.ReportMetric(float64(res.CPUCycles), "cpu-cycles")
			b.ReportMetric(res.WriteSaturation*100, "wq-sat-%")
		})
	}
}

// BenchmarkExtensionInterBurst compares FIFO inter-burst order against
// largest-burst-first (paper Section 7).
func BenchmarkExtensionInterBurst(b *testing.B) {
	for _, mech := range []string{"Burst_TH", "Burst_SZ"} {
		b.Run(mech, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = benchRun(b, "swim", mech)
			}
			b.ReportMetric(float64(res.CPUCycles), "cpu-cycles")
			b.ReportMetric(res.ReadLatency, "read-lat-cycles")
		})
	}
}

// BenchmarkExtensionCMP measures the burst-scheduling benefit as cores
// scale (paper Section 6).
func BenchmarkExtensionCMP(b *testing.B) {
	for _, cores := range []int{1, 2} {
		b.Run(fmt.Sprintf("cores-%d", cores), func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Cores = cores
				cfg.Instructions /= uint64(cores)
				cfg.WarmupInstructions /= uint64(cores)
				prof, err := workload.ByName("gcc")
				if err != nil {
					b.Fatal(err)
				}
				run := func(mech string) sim.Result {
					factory, err := sim.MechanismByName(mech)
					if err != nil {
						b.Fatal(err)
					}
					res, err := sim.Run(cfg, prof, factory)
					if err != nil {
						b.Fatal(err)
					}
					return res
				}
				norm = float64(run("Burst_TH").CPUCycles) / float64(run("BkInOrder").CPUCycles)
			}
			b.ReportMetric(norm, "exec/BkInOrder")
		})
	}
}

// BenchmarkExtensionGenerations measures the scheduling benefit across
// DRAM generations (paper Section 6: gains widen as cycle-count latencies
// grow).
func BenchmarkExtensionGenerations(b *testing.B) {
	gens := map[string]dram.Timing{
		"DDR-400":   dram.DDR_400(),
		"DDR2-800":  dram.DDR2_800(),
		"DDR3-1600": dram.DDR3_1600(),
	}
	for name, tm := range gens {
		b.Run(name, func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Mem.Timing = tm
				prof, err := workload.ByName("swim")
				if err != nil {
					b.Fatal(err)
				}
				run := func(mech string) sim.Result {
					factory, err := sim.MechanismByName(mech)
					if err != nil {
						b.Fatal(err)
					}
					res, err := sim.Run(cfg, prof, factory)
					if err != nil {
						b.Fatal(err)
					}
					return res
				}
				norm = float64(run("Burst_TH").CPUCycles) / float64(run("BkInOrder").CPUCycles)
			}
			b.ReportMetric(norm, "exec/BkInOrder")
		})
	}
}

// BenchmarkExtensionPower reports DRAM energy per access for the in-order
// baseline and burst scheduling (row hits amortize activate energy).
func BenchmarkExtensionPower(b *testing.B) {
	for _, mech := range []string{"BkInOrder", "Burst_TH"} {
		b.Run(mech, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res = benchRun(b, "swim", mech)
			}
			b.ReportMetric(res.EnergyPerAccessNJ, "nJ/access")
			b.ReportMetric(res.AvgMemPowerW, "dram-watts")
		})
	}
}
